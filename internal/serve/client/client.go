// Package client is the Go client for the raced server (internal/serve):
// it opens one session per connection, iterates the server's frame stream,
// and can reassemble each run's detect.Report from the streamed warnings —
// the object the conformance suite compares byte-for-byte against a direct
// detect.Run.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"adhocrace/internal/detect"
	"adhocrace/internal/serve"
)

// Client dials raced sessions on one server address.
type Client struct {
	network, addr string
	// DialTimeout bounds connection setup (default 10s).
	DialTimeout time.Duration
	// FrameTimeout bounds each frame read: a server that goes silent this
	// long mid-session fails the read with a deadline error instead of
	// hanging the caller forever (default 5m — far past any per-run gap a
	// healthy server produces; <0 disables).
	FrameTimeout time.Duration
}

// New returns a client for the server at network/addr ("tcp" or "unix").
func New(network, addr string) *Client {
	return &Client{
		network:      network,
		addr:         addr,
		DialTimeout:  10 * time.Second,
		FrameTimeout: 5 * time.Minute,
	}
}

// Session is one open detection session. Next iterates the server's
// frames; Close abandons the session (the server notices the disconnect
// and cancels the run).
type Session struct {
	// ID is the server-assigned session id (from the accepted frame).
	ID uint64
	// Config is the server-resolved tool configuration name.
	Config string

	conn         net.Conn
	br           *bufio.Reader
	frameTimeout time.Duration
	done         bool
}

// Open dials the server, sends the request, and waits for admission. The
// returned session must be closed.
func (c *Client) Open(req serve.SessionRequest) (*Session, error) {
	conn, err := net.DialTimeout(c.network, c.addr, c.DialTimeout)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(conn)
	if err := serve.WriteFrame(bw, serve.FrameRequest, &req); err != nil {
		conn.Close()
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	s := &Session{conn: conn, br: bufio.NewReader(conn), frameTimeout: c.FrameTimeout}
	fr, err := s.Next()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if fr.Type != serve.FrameAccepted {
		conn.Close()
		return nil, fmt.Errorf("client: expected accepted frame, got %c", byte(fr.Type))
	}
	s.ID = fr.Accepted.SessionID
	s.Config = fr.Accepted.Config
	return s, nil
}

// Next reads the session's next frame. A server-side error frame is
// returned as an error (*serve.WireError), a shed rejection as
// *serve.Busy; the frame after the last run's result is io.EOF territory
// — callers stop at Result.Last or on error.
func (s *Session) Next() (*serve.Frame, error) {
	if s.frameTimeout > 0 {
		s.conn.SetReadDeadline(time.Now().Add(s.frameTimeout))
	}
	fr, err := serve.ReadFrame(s.br)
	if err != nil {
		return nil, err
	}
	if fr.Type == serve.FrameError {
		s.done = true
		return nil, fr.Err
	}
	if fr.Type == serve.FrameBusy {
		s.done = true
		return nil, fr.Busy
	}
	if fr.Type == serve.FrameResult && fr.Result.Last {
		s.done = true
	}
	return fr, nil
}

// Close releases the connection. Closing before the terminal frame aborts
// the session server-side.
func (s *Session) Close() error { return s.conn.Close() }

// RunOutcome is one completed run: its result frame and streamed warnings.
type RunOutcome struct {
	Result   serve.RunResult
	Warnings []serve.WireWarning
}

// Report reassembles the run's detect.Report.
func (r *RunOutcome) Report() (*detect.Report, error) {
	return r.Result.Report(r.Warnings)
}

// Outcome is a completed session: every run, in order.
type Outcome struct {
	SessionID uint64
	Config    string
	Runs      []RunOutcome
}

// Run executes one session to completion and collects every run. On a
// server-side error the partial outcome accompanies the error.
func (c *Client) Run(req serve.SessionRequest) (*Outcome, error) {
	s, err := c.Open(req)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	out := &Outcome{SessionID: s.ID, Config: s.Config}
	var warnings []serve.WireWarning
	for {
		fr, err := s.Next()
		if err != nil {
			return out, err
		}
		switch fr.Type {
		case serve.FrameWarning:
			if fr.Warning.Run != len(out.Runs) {
				return out, fmt.Errorf("client: warning for run %d during run %d", fr.Warning.Run, len(out.Runs))
			}
			warnings = append(warnings, *fr.Warning)
		case serve.FrameResult:
			if fr.Result.Run != len(out.Runs) {
				return out, fmt.Errorf("client: result for run %d, expected %d", fr.Result.Run, len(out.Runs))
			}
			out.Runs = append(out.Runs, RunOutcome{Result: *fr.Result, Warnings: warnings})
			warnings = nil
			if fr.Result.Last {
				return out, nil
			}
		default:
			return out, fmt.Errorf("client: unexpected frame %c mid-session", byte(fr.Type))
		}
	}
}

// RetryPolicy shapes RunRetry's backoff on retryable rejections. The zero
// value means the defaults in parentheses.
type RetryPolicy struct {
	// Attempts is the total number of tries, first included (5).
	Attempts int
	// BaseDelay is the first backoff; each retry doubles it (50ms).
	BaseDelay time.Duration
	// MaxDelay caps the doubling (2s). The server's RetryAfterMs hint on a
	// Busy rejection acts as a floor under the computed delay.
	MaxDelay time.Duration
	// Seed drives the deterministic jitter (1).
	Seed int64
	// Sleep replaces time.Sleep — the tests' clock hook.
	Sleep func(time.Duration)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 5
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Retryable reports whether err invites another attempt: a Busy shed
// (the server chose not to admit) or an eviction under the session cap
// (the server chose to stop an admitted run). Everything else — bad
// requests, run failures, transport errors — is terminal.
func Retryable(err error) bool {
	var busy *serve.Busy
	if errors.As(err, &busy) {
		return true
	}
	var we *serve.WireError
	return errors.As(err, &we) && we.Code == serve.CodeEvicted
}

// RunRetry is Run with capped exponential backoff (plus deterministic
// jitter) on retryable rejections. A retry never repeats a finished run:
// the request resumes at the first missing run — Seed advanced, Repeat
// shrunk — and the merged outcome renumbers run indices contiguously, so
// the caller sees exactly Repeat runs with their original per-run seeds.
func (c *Client) RunRetry(req serve.SessionRequest, p RetryPolicy) (*Outcome, error) {
	p = p.withDefaults()
	if req.Seed == 0 {
		req.Seed = 1 // the server's normalize default; resume math needs it fixed now
	}
	if req.Repeat <= 0 {
		req.Repeat = 1
	}
	jitter := uint64(p.Seed)
	origSeed, origRepeat := req.Seed, req.Repeat
	out := &Outcome{}
	var err error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if attempt > 0 {
			p.Sleep(retryDelay(p, attempt, err, &jitter))
		}
		var part *Outcome
		part, err = c.Run(req)
		if part != nil {
			out.SessionID, out.Config = part.SessionID, part.Config
			for _, r := range part.Runs {
				r.Result.Run = len(out.Runs)
				r.Result.Last = false
				for i := range r.Warnings {
					r.Warnings[i].Run = r.Result.Run
				}
				out.Runs = append(out.Runs, r)
			}
		}
		if err == nil {
			if n := len(out.Runs); n > 0 {
				out.Runs[n-1].Result.Last = true
			}
			return out, nil
		}
		if !Retryable(err) {
			return out, err
		}
		// Resume past the runs already in hand.
		done := len(out.Runs)
		if done >= origRepeat {
			break
		}
		req.Seed = origSeed + int64(done)
		req.Repeat = origRepeat - done
	}
	return out, err
}

// retryDelay computes the attempt's backoff: base doubled per retry,
// capped, jittered to 50–100% of the cap value, floored by the server's
// Busy hint when one accompanied the last failure.
func retryDelay(p RetryPolicy, attempt int, lastErr error, jitter *uint64) time.Duration {
	d := p.BaseDelay << (attempt - 1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	// xorshift64: deterministic per policy seed, so tests can pin delays.
	x := *jitter
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*jitter = x
	d = d/2 + time.Duration(x%uint64(d/2+1))
	var busy *serve.Busy
	if errors.As(lastErr, &busy) {
		if hint := time.Duration(busy.RetryAfterMs) * time.Millisecond; d < hint {
			d = hint
		}
	}
	return d
}
