// Command raced is the race-detection server and its CLI client.
//
// Server mode (default) runs detection as a service: clients open
// sessions over a length-prefixed wire protocol (internal/serve), each
// session gets its own detector over a process-wide compiled-workload
// cache, and race reports stream back incrementally. SIGINT/SIGTERM
// drains gracefully: accepting stops, admitted sessions finish, then the
// process exits (or is forced down after -drain-timeout).
//
//	raced [-network tcp|unix] [-addr 127.0.0.1:7334] [-metrics 127.0.0.1:7335]
//	      [-max-sessions 64] [-workers N] [-drain-timeout 30s]
//	      [-run-timeout D] [-shed] [-memory-budget BYTES]
//	      [-trace-dir DIR] [-block-profile-rate N] [-failpoints SPEC]
//
// The metrics endpoint serves /metrics (Prometheus text, including the
// observability layer's pipeline histograms and Go runtime stats),
// /metrics.json (full snapshot with per-session gauges), /healthz, and
// the net/http/pprof profile family under /debug/pprof/ (CPU, heap,
// goroutine, block, mutex — live, while sessions run). -trace-dir writes
// one Chrome trace-event JSON per session into the directory;
// -block-profile-rate enables the runtime's block profile at the given
// sampling rate (ns) so /debug/pprof/block shows contention.
//
// -run-timeout bounds each run server-side (over-budget runs end the
// session with a run-timeout error). -shed answers saturation with a
// retryable Busy frame instead of evicting the oldest session;
// -memory-budget adds a heap-in-use admission gate to the same shedding
// policy. -failpoints arms the deterministic fault-injection registry
// (internal/fault) from a spec like
// "serve.frame.write=error%97/3,gc.cycle=panic@2" — a chaos-testing
// handle, never armed by default.
//
// Client mode (-connect) opens one session against a running server and
// prints the streamed report — racedetect's output vocabulary, remote:
//
//	raced -connect 127.0.0.1:7334 -w x264 [-network tcp] [-tool spin] [-window 7]
//	      [-seed 1] [-repeat 1] [-shards N] [-overlap] [-overlap-adaptive]
//	      [-retry N] [-v]
//
// -retry N retries shed (Busy) or evicted sessions up to N times with
// capped exponential backoff, resuming at the first missing run; the
// report then prints when the session set completes rather than live.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"adhocrace/internal/fault"
	"adhocrace/internal/serve"
	"adhocrace/internal/serve/client"
)

func main() {
	network := flag.String("network", "tcp", "protocol listener network: tcp or unix")
	addr := flag.String("addr", "127.0.0.1:7334", "protocol listener address (server mode)")
	metrics := flag.String("metrics", "", "HTTP metrics address, e.g. 127.0.0.1:7335 (empty = off)")
	maxSessions := flag.Int("max-sessions", 64, "concurrent session cap (oldest is evicted at the cap)")
	workers := flag.Int("workers", 0, "scheduling pool size (0 = max-sessions)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on SIGTERM before hard close")
	noGC := flag.Bool("no-gc-shadow", false, "disable the quiescence shadow-state GC sessions run with by default")
	runTimeout := flag.Duration("run-timeout", 0, "per-run wall-clock budget; an over-budget run ends its session with a run-timeout error (0 = unbounded)")
	shed := flag.Bool("shed", false, "answer saturation with a retryable busy frame instead of evicting the oldest session")
	memBudget := flag.Int64("memory-budget", 0, "heap-in-use bytes above which new sessions are shed (requires -shed; 0 = no memory gate)")
	failpoints := flag.String("failpoints", "", "arm fault-injection points, e.g. 'serve.frame.write=error%97/3,gc.cycle=panic@2' (chaos testing)")
	traceDir := flag.String("trace-dir", "", "write per-session Chrome trace-event JSON into this directory")
	blockRate := flag.Int("block-profile-rate", 0, "runtime block-profile sampling rate in ns (0 = off; see /debug/pprof/block)")

	connect := flag.String("connect", "", "client mode: server address to dial")
	workload := flag.String("w", "", "client: workload name")
	tool := flag.String("tool", "spin", "client: tool preset")
	window := flag.Int("window", 7, "client: spin-loop basic-block window")
	seed := flag.Int64("seed", 1, "client: first scheduler seed")
	repeat := flag.Int("repeat", 1, "client: runs per session (seeds seed..seed+repeat-1)")
	shards := flag.Int("shards", 0, "client: detector shard workers per run")
	overlap := flag.Bool("overlap", false, "client: overlap vm execution with detection")
	adaptive := flag.Bool("overlap-adaptive", false, "client: adaptive overlap segment sizing")
	retry := flag.Int("retry", 0, "client: retries for shed/evicted sessions (capped backoff, run-resume)")
	verbose := flag.Bool("v", false, "client: print every warning as it streams")
	flag.Parse()

	if *connect != "" {
		runClient(*network, *connect, serve.SessionRequest{
			Workload: *workload, Tool: *tool, Window: *window,
			Seed: *seed, Repeat: *repeat,
			Shards: *shards, Overlap: *overlap, AdaptiveSegments: *adaptive,
		}, *verbose, *retry)
		return
	}

	if *network == "unix" {
		// A stale socket from an unclean exit blocks the bind.
		os.Remove(*addr)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "raced: trace-dir: %v\n", err)
			os.Exit(1)
		}
	}
	var faults *fault.Registry
	if *failpoints != "" {
		var err error
		if faults, err = fault.Parse(*failpoints); err != nil {
			fmt.Fprintf(os.Stderr, "raced: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "raced: CHAOS MODE — failpoints armed: %s\n", *failpoints)
	}
	srv := serve.New(serve.Config{
		Network: *network, Addr: *addr, MetricsAddr: *metrics,
		MaxSessions: *maxSessions, Workers: *workers,
		DisableShadowGC: *noGC, TraceDir: *traceDir,
		RunTimeout: *runTimeout, Shed: *shed, MemoryBudgetBytes: *memBudget,
		Fault: faults,
	})
	if err := srv.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "raced: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("raced: serving on %s %s", *network, srv.Addr())
	if *metrics != "" {
		fmt.Printf(", metrics on http://%s/metrics", *metrics)
	}
	fmt.Println()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	sig := <-sigs
	fmt.Printf("raced: %s, draining (budget %s)\n", sig, *drainTimeout)

	// Force a hard close if the drain outlives its budget (or a second
	// signal arrives).
	done := make(chan struct{})
	go func() {
		select {
		case <-time.After(*drainTimeout):
			fmt.Fprintln(os.Stderr, "raced: drain budget exceeded, closing hard")
		case <-sigs:
			fmt.Fprintln(os.Stderr, "raced: second signal, closing hard")
		case <-done:
			return
		}
		srv.Close()
	}()
	srv.Drain()
	close(done)
	snap := srv.Snapshot()
	fmt.Printf("raced: drained; %d sessions served (%d completed), %d runs, %d events\n",
		snap.SessionsTotal, snap.SessionsCompleted, snap.Runs, snap.Events)
}

// runClient drives one session and prints the stream. With retries, the
// buffered RunRetry path replaces live streaming: shed and evicted
// sessions back off and resume at the first missing run.
func runClient(network, addr string, req serve.SessionRequest, verbose bool, retries int) {
	c := client.New(network, addr)
	if retries > 0 {
		out, err := c.RunRetry(req, client.RetryPolicy{Attempts: 1 + retries})
		if err != nil {
			fmt.Fprintf(os.Stderr, "raced: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("session %d: workload %s under %s (seed %d, %d run(s))\n",
			out.SessionID, req.Workload, out.Config, req.Seed, len(out.Runs))
		for _, run := range out.Runs {
			if verbose {
				for _, w := range run.Warnings {
					fmt.Printf("  run %d: %s at %s:%d addr=%d tid=%d other=%d write=%v\n",
						w.Run, w.Kind, w.File, w.Line, w.Addr, w.Tid, w.Other, w.Write)
				}
			}
			r := run.Result
			fmt.Printf("  run %d (seed %d): steps=%d threads=%d events=%d warnings=%d racy contexts=%d\n",
				r.Run, r.Seed, r.Steps, r.Threads, r.Events, r.Warnings, r.RacyContexts)
		}
		return
	}
	s, err := c.Open(req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "raced: %v\n", err)
		os.Exit(1)
	}
	defer s.Close()
	fmt.Printf("session %d: workload %s under %s (seed %d, %d run(s))\n",
		s.ID, req.Workload, s.Config, req.Seed, req.Repeat)
	for {
		fr, err := s.Next()
		if err != nil {
			fmt.Fprintf(os.Stderr, "raced: %v\n", err)
			os.Exit(1)
		}
		switch fr.Type {
		case serve.FrameWarning:
			if verbose {
				w := fr.Warning
				fmt.Printf("  run %d: %s at %s:%d addr=%d tid=%d other=%d write=%v\n",
					w.Run, w.Kind, w.File, w.Line, w.Addr, w.Tid, w.Other, w.Write)
			}
		case serve.FrameResult:
			r := fr.Result
			fmt.Printf("  run %d (seed %d): steps=%d threads=%d events=%d warnings=%d racy contexts=%d\n",
				r.Run, r.Seed, r.Steps, r.Threads, r.Events, r.Warnings, r.RacyContexts)
			if r.Last {
				return
			}
		}
	}
}
