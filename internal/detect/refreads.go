package detect

import (
	"adhocrace/internal/event"
	"adhocrace/internal/vc"
)

// Reference read representation: the seed implementation's full vector
// clock per flavor plus a per-thread event-index map, kept verbatim so the
// epoch-equivalence tests (Config.fullVCReads, enabled through the
// export_test hook) can replay whole corpora against it. Not used in
// production runs — the adaptive representation in readstate.go is the
// real hot path.
//
// One deliberate semantic nuance carried over: the seed's readEvents map
// was shared between the plain and atomic flavors (last read of either
// flavor per thread). No shipped configuration can observe the difference
// — the event index only feeds DRD's history window, and DRD excludes
// atomic accesses entirely — so the adaptive representation folds the
// positions per flavor instead.

// refWord is the read-side state of one address in reference mode. The
// write side stays in the shadow word (it was already an epoch).
type refWord struct {
	reads       *vc.Clock
	readsAtomic *vc.Clock
	readEvents  map[event.Tid]int64
}

// accessRef finishes an access in reference mode: the read-side conflict
// scan and shadow update against refWord state. The caller has already run
// the tool-specific lockset bookkeeping and the write-epoch conflict check
// (raceWith/raceEvent carry its outcome).
func (s *shardState) accessRef(e *entry, w *shadowWord, isWrite, isAtomic bool, raceWith event.Tid, raceEvent int64) {
	r := s.ref[e.addr]
	if r == nil {
		r = &refWord{}
		s.ref[e.addr] = r
	}
	clock := e.clock

	if isWrite && raceWith < 0 {
		raceWith, raceEvent = refConflict(r.reads, r, e.tid, clock)
		if raceWith < 0 && !isAtomic {
			raceWith, raceEvent = refConflict(r.readsAtomic, r, e.tid, clock)
		}
	}

	if raceWith >= 0 {
		s.maybeReport(e, w, isWrite, raceWith, raceEvent)
	}

	if isWrite {
		w.wSeen = true
		w.wTid = e.tid
		w.wTick = clock.Get(int(e.tid))
		w.wEvent = e.idx
		w.wLoc = e.loc
		w.wAtomic = isAtomic
	} else {
		rc := &r.reads
		if isAtomic {
			rc = &r.readsAtomic
		}
		if *rc == nil {
			*rc = vc.New()
		}
		(*rc).Set(int(e.tid), clock.Get(int(e.tid)))
		if r.readEvents == nil {
			r.readEvents = make(map[event.Tid]int64)
		}
		r.readEvents[e.tid] = e.idx
	}
}

// refConflict is the seed conflict scan: the first thread in ascending id
// order whose recorded read is unordered with the current access.
func refConflict(rc *vc.Clock, r *refWord, tid event.Tid, clock vc.Frozen) (event.Tid, int64) {
	if rc == nil {
		return -1, -1
	}
	for i := 0; i < rc.Len(); i++ {
		t := event.Tid(i)
		if t == tid {
			continue
		}
		if rt := rc.Get(i); rt > 0 && rt > clock.Get(i) {
			return t, r.readEvents[t]
		}
	}
	return -1, -1
}
