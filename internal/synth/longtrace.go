package synth

import (
	"fmt"

	"adhocrace/internal/detect"
	"adhocrace/internal/ir"
	"adhocrace/internal/synclib"
	"adhocrace/internal/vm"
)

// Long-trace streaming mode: one detector kept alive across many replayed
// windows of a seeded churn workload. A window is one vm.Run of the same
// phased program; the windows are totally ordered through the main
// thread's continuing clock (the vm restarts child tids per run, main is
// tid 0 in every window), so the concatenated stream is a single long
// trace the detector sees as hundreds of millions of events — the scale
// at which unbounded shadow state is fatal and the quiescence GC
// (detect/gc.go) has to hold the footprint flat.
//
// Each window runs Phases sequential spawn-join rounds. Round p spawns
// Workers threads that make Passes mutex-protected passes over the
// phase's private Span-word slice of DATA, plus one deliberately
// unprotected store to RACY[p] each — so every window churns the whole
// shadow table and the warning machinery, and every join renders the
// round's state dominated, GC bait by construction.

// LongTraceOpts shapes the windowed replay. The zero value of any field
// picks the default noted on it.
type LongTraceOpts struct {
	// Phases is the number of sequential spawn-join churn rounds per
	// window (default 32).
	Phases int
	// Span is the number of DATA words each phase touches (default 48).
	Span int
	// Workers is the number of threads spawned per phase (default 2).
	Workers int
	// Passes is how many locked passes each worker makes over the phase's
	// slice (default 4).
	Passes int
	// Windows is the number of vm.Run replays fed to the one detector
	// (default 1).
	Windows int
	// MaxSteps bounds each window's execution (vm.Options.MaxSteps;
	// 0 means the vm default).
	MaxSteps int64
	// Cfg is the tool configuration (zero Name means HelgrindPlusLib).
	Cfg detect.Config
	// Opts is the pipeline shape, including the GC knobs. OnWarning, Tap,
	// and Interrupt are ignored in long-trace mode.
	Opts detect.RunOpts
	// OnWindow, when set, observes the cumulative report after each
	// window — the soak tests' sampling hook.
	OnWindow func(window int, rep *detect.Report)
}

func (o LongTraceOpts) withDefaults() LongTraceOpts {
	if o.Phases <= 0 {
		o.Phases = 32
	}
	if o.Span <= 0 {
		o.Span = 48
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.Passes <= 0 {
		o.Passes = 4
	}
	if o.Windows <= 0 {
		o.Windows = 1
	}
	if o.Cfg.Name == "" {
		o.Cfg = detect.HelgrindPlusLib()
	}
	return o
}

// buildLongTraceProgram builds the phased churn workload: per phase, a
// worker function making Passes locked passes over the phase's DATA slice
// and one unprotected RACY store, and a main that spawns and joins the
// phase's workers in sequence.
func buildLongTraceProgram(o LongTraceOpts) *ir.Program {
	b := ir.NewBuilder("longtrace")
	lib := synclib.Install(b, ir.LibPthread)
	data := b.GlobalArray("DATA", o.Phases*o.Span)
	racy := b.GlobalArray("RACY", o.Phases)
	mus := make([]int64, o.Phases)
	for p := range mus {
		mus[p] = b.Global(fmt.Sprintf("mu%d", p))
	}

	for p := 0; p < o.Phases; p++ {
		f := b.Func(fmt.Sprintf("phase%d", p), 0)
		lo := f.Const(int64(p * o.Span))
		hi := f.Const(int64((p + 1) * o.Span))
		one := f.Const(1)
		for pass := 0; pass < o.Passes; pass++ {
			lib.Lock(f, mus[p], "")
			idx := f.Mov(lo)
			head, body, done := f.NewBlock(), f.NewBlock(), f.NewBlock()
			f.Jmp(head)
			f.SetBlock(head)
			f.Br(f.CmpLT(idx, hi), body, done)
			f.SetBlock(body)
			v := f.LoadIdx(data, idx, "DATA")
			f.StoreIdx(data, idx, f.Add(v, one), "DATA")
			f.BinTo(ir.OpAdd, idx, idx, one)
			f.Jmp(head)
			f.SetBlock(done)
			lib.Unlock(f, mus[p], "")
		}
		f.StoreAddr(racy+int64(p)*8, one)
		f.Ret(ir.NoReg)
	}

	m := b.Func("main", 0)
	for p := 0; p < o.Phases; p++ {
		tids := make([]int, o.Workers)
		for w := range tids {
			tids[w] = m.Spawn(fmt.Sprintf("phase%d", p))
		}
		for _, tid := range tids {
			m.Join(tid)
		}
	}
	m.Ret(ir.NoReg)
	return b.MustBuild()
}

// LongTrace streams Windows replays of the seeded churn workload through
// one persistent detector and returns the cumulative report. The window
// scheduling seeds derive from seed deterministically, so two LongTrace
// calls differing only in GC knobs see byte-identical event streams.
func LongTrace(seed int64, o LongTraceOpts) (*detect.Report, error) {
	o = o.withDefaults()
	prog := buildLongTraceProgram(o)
	ins := o.Cfg.Instrument(prog)
	d := detect.NewSharded(o.Cfg, ins, prog, o.Opts.Shards)
	defer d.Close()
	if o.Opts.GCShadow {
		d.EnableShadowGC(o.Opts.GCEvents)
	}
	for w := 0; w < o.Windows; w++ {
		_, err := vm.Run(prog, vm.Options{
			Seed:             seed + int64(w),
			KnownLibs:        o.Cfg.KnownLibs,
			Instr:            ins,
			Sink:             d,
			SegmentEvents:    o.Opts.SegmentEvents,
			AdaptiveSegments: o.Opts.AdaptiveSegments,
			MaxSteps:         o.MaxSteps,
		})
		if err != nil {
			return nil, fmt.Errorf("longtrace window %d: %w", w, err)
		}
		if o.OnWindow != nil {
			o.OnWindow(w, d.Report())
		}
	}
	return d.Report(), nil
}
