// Decoded-vs-reference interpreter equivalence: the pre-decoded vm
// dispatch (vm.Decode) must produce byte-identical reports to the legacy
// switch interpreter on every workload, under every preset, across the
// shards × overlap × GC pipeline sweep. External test package like the
// other equivalence suites (imports the workload packages, which cycle
// back into detect for an in-package test).
package detect_test

import (
	"testing"

	"adhocrace/internal/detect"
	"adhocrace/internal/harness"
	"adhocrace/internal/ir"
	"adhocrace/internal/synth"
	"adhocrace/internal/workloads/dataracetest"
)

// decodeSweepOpts is the pipeline sweep the decoded-equivalence tests
// rotate through: sequential, sharded, overlapped, and GC'd shapes — the
// decoded dispatch must be invisible under all of them.
func decodeSweepOpts() []detect.RunOpts {
	return []detect.RunOpts{
		{},
		{Shards: 2},
		{Shards: 4},
		detect.RunOpts{}.Overlapped(),
		{Shards: 2, SegmentEvents: 64},
		{GCShadow: true, GCEvents: 256},
	}
}

// checkDecodeEquivalence runs one (program, config, seed, shape) under the
// decoded dispatch and the reference interpreter and asserts byte-identical
// reports.
func checkDecodeEquivalence(t *testing.T, build func() *ir.Program, name string, cfg detect.Config, seed int64, opts detect.RunOpts) {
	t.Helper()
	dec, _, err := detect.RunOpt(build(), cfg, seed, opts)
	if err != nil {
		t.Fatalf("%s under %s seed %d (decoded): %v", name, cfg.Name, seed, err)
	}
	refOpts := opts
	refOpts.Reference = true
	ref, _, err := detect.RunOpt(build(), cfg, seed, refOpts)
	if err != nil {
		t.Fatalf("%s under %s seed %d (reference): %v", name, cfg.Name, seed, err)
	}
	want, got := harness.ReportFingerprint(ref), harness.ReportFingerprint(dec)
	if got != want {
		t.Errorf("%s under %s seed %d (shards=%d overlap=%d gc=%v): decoded report differs from reference interpreter\n--- reference ---\n%s--- decoded ---\n%s",
			name, cfg.Name, seed, opts.Shards, opts.SegmentEvents, opts.GCShadow, want, got)
	}
}

// TestDecodedEquivalenceSuite replays the full data-race-test suite under
// the four paper tools plus the lock-inference variant against the
// reference interpreter, rotating the pipeline sweep per (case, tool) so
// the whole grid is covered across the suite.
func TestDecodedEquivalenceSuite(t *testing.T) {
	cfgs := append(detect.PaperTools(7), detect.HelgrindPlusNolibSpinLocks(7))
	sweep := decodeSweepOpts()
	i := 0
	for _, c := range dataracetest.Suite() {
		for _, cfg := range cfgs {
			checkDecodeEquivalence(t, c.Build, c.Name, cfg, 1, sweep[i%len(sweep)])
			i++
		}
	}
}

// TestDecodedEquivalenceSynth replays a synthesis corpus (300 seeds, 60
// under -short) against the reference interpreter under the two most
// semantically distant presets, rotating the pipeline sweep per seed.
func TestDecodedEquivalenceSynth(t *testing.T) {
	seeds := int64(300)
	if testing.Short() {
		seeds = 60
	}
	cfgs := []detect.Config{detect.HelgrindPlusLibSpin(7), detect.DRD()}
	sweep := decodeSweepOpts()
	for seed := int64(1); seed <= seeds; seed++ {
		w := synth.Generate(seed, synth.Options{})
		opts := sweep[int(seed)%len(sweep)]
		for _, cfg := range cfgs {
			checkDecodeEquivalence(t, func() *ir.Program { return w.Prog }, w.Name, cfg, 1, opts)
		}
	}
}
