// Package harness runs the paper's experiments: the data-race-test
// accuracy tables (slides 24/25), the PARSEC racy-context tables (slides
// 27-30), and the memory/runtime overhead figures (slides 31/32).
package harness

import (
	"fmt"
	"sort"
	"strings"

	"adhocrace/internal/detect"
	"adhocrace/internal/ir"
	"adhocrace/internal/workloads/dataracetest"
)

// ContextCap is the saturation value of the racy-context metric: the paper
// reports 1000 when a tool floods.
const ContextCap = 1000

// Seeds are the scheduler seeds the PARSEC experiments average over
// ("five runs" in the paper's metric).
var Seeds = []int64{1, 2, 3, 4, 5}

// AccuracyRow is one tool's line in the test-suite accuracy table.
type AccuracyRow struct {
	Tool        string
	FalseAlarms int
	MissedRaces int
	Failed      int
	Correct     int
	// FailedCases lists the failing case names for diagnosis.
	FailedCases []string
}

// Accuracy scores one tool configuration over the full data-race-test
// suite with a fixed seed: a race-free case with any warning is a false
// alarm, a racy case without warnings is a missed race.
func Accuracy(cfg detect.Config, seed int64) (AccuracyRow, error) {
	row := AccuracyRow{Tool: cfg.Name}
	for _, c := range dataracetest.Suite() {
		rep, _, err := detect.Run(c.Build(), cfg, seed)
		if err != nil {
			return row, fmt.Errorf("%s on %s: %w", cfg.Name, c.Name, err)
		}
		warned := rep.HasWarnings()
		switch {
		case !c.Racy && warned:
			row.FalseAlarms++
			row.FailedCases = append(row.FailedCases, c.Name)
		case c.Racy && !warned:
			row.MissedRaces++
			row.FailedCases = append(row.FailedCases, c.Name)
		}
	}
	row.Failed = row.FalseAlarms + row.MissedRaces
	row.Correct = dataracetest.SuiteSize - row.Failed
	return row, nil
}

// AccuracyTable scores several configurations (Table 1 uses the four paper
// tools; Table 2 the spin-window sweep).
func AccuracyTable(cfgs []detect.Config, seed int64) ([]AccuracyRow, error) {
	rows := make([]AccuracyRow, 0, len(cfgs))
	for _, cfg := range cfgs {
		row, err := Accuracy(cfg, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table1Configs are the four tools of the slide-24 table.
func Table1Configs() []detect.Config { return detect.PaperTools(7) }

// Table2Configs are the spin-window sweep of the slide-25 table.
func Table2Configs() []detect.Config {
	return []detect.Config{
		detect.HelgrindPlusLibSpin(3),
		detect.HelgrindPlusLibSpin(6),
		detect.HelgrindPlusLibSpin(7),
		detect.HelgrindPlusLibSpin(8),
	}
}

// FormatAccuracy renders an accuracy table in the paper's column layout.
func FormatAccuracy(title string, rows []AccuracyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-28s %12s %12s %12s %18s\n",
		"Tool", "False alarms", "Missed races", "Failed cases", "Correctly analyzed")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %12d %12d %12d %18d\n",
			r.Tool, r.FalseAlarms, r.MissedRaces, r.Failed, r.Correct)
	}
	return b.String()
}

// ContextResult is the racy-context score of one (program, tool) pair:
// the mean over Seeds of distinct warned source locations, capped.
type ContextResult struct {
	Program string
	Tool    string
	Mean    float64
	PerSeed []int
}

// RacyContexts measures one program under one tool configuration across
// the standard seeds.
func RacyContexts(build func() *ir.Program, program string, cfg detect.Config) (ContextResult, error) {
	res := ContextResult{Program: program, Tool: cfg.Name}
	total := 0
	for _, seed := range Seeds {
		rep, _, err := detect.Run(build(), cfg, seed)
		if err != nil {
			return res, fmt.Errorf("%s on %s seed %d: %w", cfg.Name, program, seed, err)
		}
		n := rep.RacyContexts()
		if n > ContextCap {
			n = ContextCap
		}
		res.PerSeed = append(res.PerSeed, n)
		total += n
	}
	res.Mean = float64(total) / float64(len(Seeds))
	return res, nil
}

// FormatContexts renders a racy-context table: one row per program, one
// column per tool.
func FormatContexts(title string, programs []string, tools []string, cells map[string]map[string]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-16s", "Program")
	for _, tool := range tools {
		fmt.Fprintf(&b, " %22s", tool)
	}
	fmt.Fprintln(&b)
	for _, prog := range programs {
		fmt.Fprintf(&b, "%-16s", prog)
		for _, tool := range tools {
			fmt.Fprintf(&b, " %22s", formatMean(cells[prog][tool]))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

func formatMean(v float64) string {
	if v == float64(int(v)) {
		return fmt.Sprintf("%d", int(v))
	}
	return fmt.Sprintf("%.1f", v)
}

// DiffCategories summarizes which categories the failing cases of a row
// fall into — used by tests asserting the table's shape.
func DiffCategories(row AccuracyRow) map[string]int {
	byName := make(map[string]string)
	for _, c := range dataracetest.Suite() {
		byName[c.Name] = c.Category
	}
	out := make(map[string]int)
	for _, name := range row.FailedCases {
		out[byName[name]]++
	}
	return out
}

// SortedKeys returns the sorted keys of a string-count map, for stable
// diagnostics of DiffCategories results.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
