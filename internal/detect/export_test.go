package detect

// Bridges for the external test package (detect_test, used by tests that
// import the workload packages and would otherwise cycle back into
// detect): share the in-package test helpers instead of copying them.
var (
	MustRunForTest     = mustRun
	RacyProgramForTest = racyProgram
)

// FullVCReads returns the configuration with the seed full-vector-clock
// read representation enabled — the reference side of the epoch
// equivalence tests.
func FullVCReads(cfg Config) Config {
	cfg.fullVCReads = true
	return cfg
}

// FullVCSync returns the configuration with the seed full-vector-clock
// happens-before engine enabled — the reference side of the clock-store
// equivalence tests.
func FullVCSync(cfg Config) Config {
	cfg.fullVCSync = true
	return cfg
}
