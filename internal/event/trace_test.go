package event

import (
	"testing"
)

// flushCounter counts events and Flush calls, to observe Replay's contract.
type flushCounter struct {
	events  int
	flushes int
}

func (f *flushCounter) Handle(ev *Event) { f.events++ }
func (f *flushCounter) Flush()           { f.flushes++ }

// TestTraceEmptyReplay: replaying an empty trace delivers no events but
// still flushes the sink — a buffering sink must drain even when the
// stream was empty, exactly as the vm flushes at the end of a run.
func TestTraceEmptyReplay(t *testing.T) {
	var tr Trace
	var sink flushCounter
	tr.Replay(&sink)
	if sink.events != 0 {
		t.Errorf("empty trace delivered %d events", sink.events)
	}
	if sink.flushes != 1 {
		t.Errorf("empty trace flushed %d times, want 1", sink.flushes)
	}
}

// TestTraceReplayAfterPartialRead: consuming a prefix of the recorded
// stream by hand does not disturb Replay — a later Replay re-delivers the
// full stream from the start, so one recording can feed any number of
// detectors (the sharded-detector benchmarks rely on this).
func TestTraceReplayAfterPartialRead(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 10; i++ {
		tr.Handle(&Event{Kind: KindWrite, Tid: Tid(i % 3), Addr: int64(i) * 8})
	}
	// Partial read: hand the first half to a sink directly.
	var partial flushCounter
	for i := 0; i < 5; i++ {
		partial.Handle(&tr.Events[i])
	}
	if partial.events != 5 {
		t.Fatalf("partial read saw %d events, want 5", partial.events)
	}
	// A full replay afterwards starts over and delivers everything.
	var full flushCounter
	tr.Replay(&full)
	if full.events != 10 {
		t.Errorf("replay after partial read delivered %d events, want 10", full.events)
	}
	if full.flushes != 1 {
		t.Errorf("replay flushed %d times, want 1", full.flushes)
	}
	// Replay is repeatable: a second pass delivers the same stream.
	var again flushCounter
	tr.Replay(&again)
	if again.events != 10 {
		t.Errorf("second replay delivered %d events, want 10", again.events)
	}
}

// TestTraceRecordsCopies: the trace stores copies, not the (reused)
// event pointer the vm hands sinks.
func TestTraceRecordsCopies(t *testing.T) {
	tr := &Trace{}
	ev := Event{Kind: KindRead, Addr: 8}
	tr.Handle(&ev)
	ev.Addr = 16 // the vm reuses its scratch event
	tr.Handle(&ev)
	if tr.Events[0].Addr != 8 || tr.Events[1].Addr != 16 {
		t.Errorf("trace aliased the scratch event: %+v", tr.Events)
	}
}
