package synth

import (
	"strings"
	"testing"

	"adhocrace/internal/sched"
	"adhocrace/internal/spin"
)

// TestGenerateDeterminism: the same seed yields a byte-identical program
// (disassembly), fragment list, and ground truth; different seeds differ.
func TestGenerateDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1000} {
		a := Generate(seed, Options{})
		b := Generate(seed, Options{})
		if a.Describe() != b.Describe() {
			t.Fatalf("seed %d: ground truth differs across regenerations", seed)
		}
		if a.Prog.Disassemble() != b.Prog.Disassemble() {
			t.Fatalf("seed %d: disassembly differs across regenerations", seed)
		}
	}
	if Generate(1, Options{}).Prog.Disassemble() == Generate(2, Options{}).Prog.Disassemble() {
		t.Fatal("seeds 1 and 2 generated identical programs")
	}
}

// TestExpectationsShape: every kind carries a full, consistent prediction
// table — all four presets present, ground truth respected by the exact
// presets, and the excluded idiom explicitly categorized.
func TestExpectationsShape(t *testing.T) {
	sawExcluded := false
	for k := Kind(0); k < numKinds; k++ {
		ex := Expectations(k)
		for _, p := range PresetNames {
			if _, ok := ex[p]; !ok {
				t.Fatalf("%s: no expectation for preset %s", k, p)
			}
		}
		if ex["spin"].Proximity {
			t.Errorf("%s: spin predictions must be deterministic, not proximity-dependent", k)
		}
		if k.WithinModel() && ex["spin"].Warn != k.Racy() {
			t.Errorf("%s: within-model but spin expectation (warn=%v) disagrees with ground truth (racy=%v)",
				k, ex["spin"].Warn, k.Racy())
		}
		if !k.WithinModel() {
			sawExcluded = true
			if k.ExclusionReason() == "" {
				t.Errorf("%s: excluded kind without an exclusion reason", k)
			}
			if ex["spin"].Warn == k.Racy() {
				t.Errorf("%s: excluded kind should predict a spin mismatch with ground truth", k)
			}
		}
	}
	if !sawExcluded {
		t.Error("no excluded idiom in the fragment library")
	}
}

// corpusSize returns the acceptance corpus size (500 seeds; trimmed under
// -short).
func corpusSize(t *testing.T) int64 {
	if testing.Short() {
		return 80
	}
	return 500
}

// TestCorpusOracleAgreement is the acceptance corpus: over 500 seeds,
//
//   - the generator's declared ground truth matches an exact
//     happens-before oracle execution of every program;
//   - the spin preset matches ground truth on every program whose idioms
//     are within the paper's model, and shows exactly the documented
//     false positive on the excluded idiom (spin-retry);
//   - lib and eraser match their expected FP/FN signature exactly;
//   - drd matches its signature, with proximity-dependent predictions
//     (bounded segment history vs scheduler interleaving) held in
//     aggregate: at most 2% variance per category.
func TestCorpusOracleAgreement(t *testing.T) {
	n := corpusSize(t)
	d := &Differ{OracleCheck: true}
	r, err := d.RunCorpus(1, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.OracleViolations) > 0 {
		t.Fatalf("oracle violations:\n%s", strings.Join(r.OracleViolations, "\n"))
	}
	for _, dis := range r.Disagreements {
		if !dis.Proximity {
			t.Errorf("hard disagreement: %s", dis)
		}
	}
	for _, p := range PresetNames {
		for cat, tally := range r.Cat[p] {
			if tally.ProximityMiss*50 > tally.Match {
				t.Errorf("%s on %s: %d proximity misses vs %d matches (>2%%)",
					p, cat, tally.ProximityMiss, tally.Match)
			}
		}
	}
	// The corpus must actually exercise the excluded idiom: its exclusion
	// is categorized, not skipped.
	if tally := r.Cat["spin"]["spin-retry"]; tally == nil || tally.Match == 0 {
		t.Error("corpus never exercised the excluded spin-retry idiom")
	}
	t.Logf("corpus: %d programs, %d fragments, %d disagreements (all proximity)",
		r.Programs, r.Fragments, len(r.Disagreements))
}

// TestDifferDeterminism: the corpus report is byte-identical under the
// sequential engine, a parallel engine, a parallel engine with sharded
// detectors, and the overlapped vm→detector pipeline (alone and composed
// with sharding).
func TestDifferDeterminism(t *testing.T) {
	variants := []*Differ{
		{Eng: sched.Sequential()},
		{Eng: sched.New(sched.Options{Workers: 4})},
		{Eng: sched.New(sched.Options{Workers: 4}), Shards: 2},
		{Eng: sched.Sequential(), Overlap: true},
		{Eng: sched.New(sched.Options{Workers: 4}), Shards: 2, Overlap: true},
	}
	var base string
	for i, d := range variants {
		d.Shards = max(d.Shards, 1)
		r, err := d.RunCorpus(1, 25)
		if err != nil {
			t.Fatal(err)
		}
		// Shard count is part of the header; normalize it out so the
		// comparison covers the scored content.
		got := strings.Replace(r.Format(), "shards 2", "shards 1", 1)
		if i == 0 {
			base = got
			continue
		}
		if got != base {
			t.Fatalf("variant %d report differs from sequential baseline:\n%s\n--- vs ---\n%s", i, got, base)
		}
	}
}

// TestWindowSweep: generated loop shapes classify exactly when the window
// covers their block count. The program-wide count is offset by the
// synclib primitives' own loops, so the assertion works on the delta
// against a fragment-free baseline.
func TestWindowSweep(t *testing.T) {
	empty := Assemble("sweep_base", nil)
	windows := []int{2, 3, 4, 5, 6, 7, 8}
	base := spin.Sweep(empty.Prog, windows)

	frags := []Fragment{
		{Kind: KindSpinPlain, Index: 0, Blocks: 2},
		{Kind: KindSpinPlain, Index: 1, Blocks: 5},
		{Kind: KindSpinPlain, Index: 2, Blocks: 7},
		{Kind: KindSpinRetry, Index: 3, Blocks: 3}, // never classifies
	}
	w := Assemble("sweep_frags", frags)
	pts := spin.Sweep(w.Prog, windows)
	for i, wd := range windows {
		want := 0
		for _, f := range frags {
			if f.Kind == KindSpinPlain && f.Blocks <= wd {
				want++
			}
		}
		got := pts[i].Classified - base[i].Classified
		if got != want {
			t.Errorf("window %d: %d fragment loops classified, want %d", wd, got, want)
		}
	}
}

// TestFragIndexOf: attribution parses the zero-padded prefix and larger
// hand-assembled indices alike, and rejects non-prefixed names.
func TestFragIndexOf(t *testing.T) {
	cases := []struct {
		in  string
		idx int
		ok  bool
	}{
		{"f00_FLAG", 0, true},
		{"f07_DATA", 7, true},
		{"f42_CELLS[3]", 42, true},
		{"f123_X", 123, true},
		{"f1_X", 0, false}, // prefix() always zero-pads to two digits
		{"g00_X", 0, false},
		{"f00FLAG", 0, false},
		{"fXY_FLAG", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		idx, ok := fragIndexOf(c.in)
		if ok != c.ok || (ok && idx != c.idx) {
			t.Errorf("fragIndexOf(%q) = %d,%v want %d,%v", c.in, idx, ok, c.idx, c.ok)
		}
	}
}

// TestAssembleIndexStability: shrinking-style deletion keeps surviving
// fragments' names (and thus attribution) stable.
func TestAssembleIndexStability(t *testing.T) {
	frags := []Fragment{
		{Kind: KindRacyPlain, Index: 0, Threads: 2},
		{Kind: KindSpinPlain, Index: 1, Blocks: 4},
		{Kind: KindLock, Index: 2, Threads: 2, Rounds: 1},
	}
	full := Assemble("stab_full", frags)
	sub := Assemble("stab_sub", []Fragment{frags[1]})
	var fullSyms, subSyms []string
	for _, v := range full.Vars {
		if v.Frag == 1 {
			fullSyms = append(fullSyms, v.Sym)
		}
	}
	for _, v := range sub.Vars {
		subSyms = append(subSyms, v.Sym)
	}
	if strings.Join(fullSyms, ",") != strings.Join(subSyms, ",") {
		t.Fatalf("fragment 1 symbols changed under deletion: %v vs %v", fullSyms, subSyms)
	}
}
